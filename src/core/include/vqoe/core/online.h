// Online (streaming) QoE monitoring.
//
// Section 8 of the paper: "The trained models can be then directly applied
// on the passively monitored traffic and report issues in real time."
// OnlineMonitor is that deployment shape: weblog records are ingested one
// at a time in timestamp order, session boundaries are recovered
// incrementally with the same rules as the batch reconstructor
// (YouTube-host filter, watch-page markers, idle gaps — Section 5.2), and a
// QoeReport is emitted the moment a session closes.
//
// Equivalence with the batch path (session::reconstruct + QoePipeline::
// assess) is a tested invariant.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vqoe/core/pipeline.h"
#include "vqoe/session/reconstruct.h"

namespace vqoe::core {

struct OnlineMonitorConfig {
  session::ReconstructionOptions reconstruction;
  /// Sessions with fewer media chunks than this are discarded unreported
  /// (page visits without playback, probe traffic).
  std::size_t min_chunks = 1;
};

/// A finished session with its assessed QoE.
struct CompletedSession {
  std::string subscriber_id;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  std::size_t chunk_count = 0;
  QoeReport report;
};

/// Transparent string hashing so open-session lookups can take a
/// string_view (no per-record std::string construction on the hot path).
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Incremental reconstruction + assessment over a live record stream.
/// Not thread-safe; engine::MonitorEngine shards by subscriber for
/// parallel deployments.
class OnlineMonitor {
 public:
  /// @param pipeline trained detectors; borrowed, must outlive the monitor.
  explicit OnlineMonitor(const QoePipeline& pipeline,
                         OnlineMonitorConfig config = {});

  /// Feeds one record. Records must arrive in non-decreasing timestamp
  /// order per subscriber. Returns the sessions this record closed
  /// (usually none or one).
  std::vector<CompletedSession> ingest(const trace::WeblogRecord& record);

  /// Advances the clock without traffic, closing sessions whose subscriber
  /// has been idle past the gap.
  std::vector<CompletedSession> advance_to(double now_s);

  /// End of stream: closes and reports every open session.
  std::vector<CompletedSession> flush();

  [[nodiscard]] std::size_t open_sessions() const { return open_.size(); }
  [[nodiscard]] std::size_t sessions_reported() const { return reported_; }
  [[nodiscard]] std::size_t sessions_discarded() const { return discarded_; }

 private:
  struct OpenSession {
    double start_time_s = 0.0;
    double last_activity_s = 0.0;
    bool saw_media = false;
    std::vector<ChunkObs> chunks;
  };

  /// Closes one subscriber's open session, emitting it when large enough.
  void close(std::string_view subscriber, std::vector<CompletedSession>& out);

  const QoePipeline& pipeline_;
  OnlineMonitorConfig config_;
  /// Classification buffers reused across every session this monitor
  /// scores (the monitor is single-threaded; engine shards each own one
  /// monitor and therefore one scratch).
  DetectorScratch scratch_;
  std::unordered_map<std::string, OpenSession, TransparentStringHash,
                     std::equal_to<>>
      open_;
  std::size_t reported_ = 0;
  std::size_t discarded_ = 0;
};

}  // namespace vqoe::core

// Online (streaming) QoE monitoring.
//
// Section 8 of the paper: "The trained models can be then directly applied
// on the passively monitored traffic and report issues in real time."
// OnlineMonitor is that deployment shape: weblog records are ingested one
// at a time in timestamp order, session boundaries are recovered
// incrementally with the same rules as the batch reconstructor
// (YouTube-host filter, watch-page markers, idle gaps — Section 5.2), and a
// QoeReport is emitted the moment a session closes.
//
// With a window::WindowConfig the monitor additionally reports *mid-session*:
// every time a window of the configured length closes (by a record or an
// advance_to tick moving the stream clock past its end), the ingest path
// only records the window's chunk span and accumulator summary — O(1), no
// inference. take_verdicts() then scores each pending window through the
// same QoePipeline::assess code path as session close, yielding a
// window::WindowVerdict (labels + forest confidences + the accumulator's
// summary) per window. Deferring the forest to harvest time keeps the
// per-record ingest overhead to the accumulator updates (bench/perf_window
// measures it), and in the sharded engine it puts scoring on the shard
// workers' publish step rather than under ingest. A verdict's content
// depends only on its chunk span and the pipeline, never on *when* the
// harvest runs, so the stream stays deterministic. Because the scoring
// path is shared with session close, a full-session window (length
// covering the whole session) reproduces the session-close QoeReport
// bit-identically — a tested invariant, like the equivalence with the
// batch path (session::reconstruct + QoePipeline::assess).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vqoe/core/pipeline.h"
#include "vqoe/session/reconstruct.h"
#include "vqoe/window/window.h"

namespace vqoe::core {

struct OnlineMonitorConfig {
  session::ReconstructionOptions reconstruction;
  /// Sessions with fewer media chunks than this are discarded unreported
  /// (page visits without playback, probe traffic).
  std::size_t min_chunks = 1;
  /// Mid-session windowing. Disabled by default (length_s == 0): the
  /// monitor then reports on session close only, the pre-window behaviour,
  /// and the ingest hot path carries no windowing cost beyond one branch.
  window::WindowConfig window;
};

/// A finished session with its assessed QoE.
struct CompletedSession {
  std::string subscriber_id;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  std::size_t chunk_count = 0;
  QoeReport report;
};

/// Transparent string hashing so open-session lookups can take a
/// string_view (no per-record std::string construction on the hot path).
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Incremental reconstruction + assessment over a live record stream.
/// Not thread-safe; engine::MonitorEngine shards by subscriber for
/// parallel deployments.
class OnlineMonitor {
 public:
  /// @param pipeline trained detectors; borrowed, must outlive the monitor.
  explicit OnlineMonitor(const QoePipeline& pipeline,
                         OnlineMonitorConfig config = {});

  /// Feeds one record. Records must arrive in non-decreasing timestamp
  /// order per subscriber. Returns the sessions this record closed
  /// (usually none or one). With windowing enabled the record's timestamp
  /// first closes (and scores) any due windows of its own subscriber's
  /// session — a record exactly at a window end closes that window and
  /// lands in the next one (the pinned half-open boundary rule).
  std::vector<CompletedSession> ingest(const trace::WeblogRecord& record);

  /// Advances the clock without traffic: closes due windows of *every*
  /// open session, then closes sessions whose subscriber has been idle
  /// past the gap. A tick exactly at a window end closes the window; a
  /// tick exactly at last_activity + idle_gap does *not* close the session
  /// (the gap rule is strictly greater, matching the batch reconstructor).
  std::vector<CompletedSession> advance_to(double now_s);

  /// End of stream: closes and reports every open session.
  std::vector<CompletedSession> flush();

  /// Scores every window closed since the last call and returns the
  /// verdicts (per session in close order). This is where the forest runs:
  /// the ingest path only queues closed windows, so harvest cadence — not
  /// record rate — sets the inference cost. Cheap no-op when windowing is
  /// disabled or nothing closed.
  [[nodiscard]] std::vector<window::WindowVerdict> take_verdicts();

  [[nodiscard]] std::size_t open_sessions() const { return open_.size(); }
  [[nodiscard]] std::size_t sessions_reported() const { return reported_; }
  [[nodiscard]] std::size_t sessions_discarded() const { return discarded_; }
  /// Chunk-bearing windows closed so far (empty windows are never
  /// materialized and never counted).
  [[nodiscard]] std::size_t windows_closed() const { return windows_closed_; }
  /// Closed windows that met window.min_chunks and were scored into a
  /// WindowVerdict (counted when take_verdicts() scores them).
  [[nodiscard]] std::size_t verdicts_emitted() const {
    return verdicts_emitted_;
  }

 private:
  /// A closed, gate-passing window awaiting forest scoring. The ingest hot
  /// path only records the chunk span and the accumulator summary here;
  /// take_verdicts() runs the detectors over the span.
  struct PendingWindow {
    std::uint64_t index = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    bool final_window = false;
    std::uint32_t begin_chunk = 0;  ///< span [begin, end) into the chunk log
    std::uint32_t end_chunk = 0;
    double window_cusum = 0.0;
    double mean_goodput_kbps = 0.0;
  };
  /// The pending windows of one session that closed before a harvest ran.
  /// Detaching *moves* the session's chunk log and pending list here —
  /// O(1) per dying session, nothing per window or per chunk — and the
  /// span indices keep their meaning against the moved log.
  struct DetachedWindows {
    std::string subscriber_id;
    std::vector<ChunkObs> chunks;
    std::vector<PendingWindow> windows;
  };

  struct OpenSession {
    double start_time_s = 0.0;
    double last_activity_s = 0.0;
    bool saw_media = false;
    std::vector<ChunkObs> chunks;
    window::SessionWindows windows;
    /// Windows closed but not yet harvested. Span indices stay valid while
    /// the session lives (the chunk log only grows); close() detaches them.
    std::vector<PendingWindow> pending;
    /// Tumbling windows partition the chunk log, so the span of each
    /// closed window starts where the previous one ended — this cursor
    /// makes span recovery O(1). Sliding/gapped schedules fall back to
    /// binary search.
    std::uint32_t span_cursor = 0;
  };

  /// Closes one subscriber's open session, emitting it when large enough.
  void close(std::string_view subscriber, std::vector<CompletedSession>& out);

  /// Closes this session's windows due at now_s, enqueueing the
  /// gate-passing ones as pending verdicts.
  void close_windows_due(OpenSession& session, double now_s);
  /// Converts closed_scratch_ into PendingWindow entries and clears it.
  void enqueue_closed_windows(OpenSession& session);
  /// Moves a closing session's pending windows and chunk log into
  /// detached_ in one step. The caller must be done with session.chunks
  /// (it is left moved-from when anything was pending).
  void detach_pending(std::string_view subscriber, OpenSession& session);
  /// Runs the detectors over one pending window's span into verdicts_.
  void score_pending(std::string_view subscriber, const PendingWindow& w,
                     std::span<const ChunkObs> chunk_log);

  const QoePipeline& pipeline_;
  OnlineMonitorConfig config_;
  /// Classification buffers reused across every session this monitor
  /// scores (the monitor is single-threaded; engine shards each own one
  /// monitor and therefore one scratch).
  DetectorScratch scratch_;
  std::unordered_map<std::string, OpenSession, TransparentStringHash,
                     std::equal_to<>>
      open_;
  /// Reused buffer for SessionWindows::close_due / close_all output.
  std::vector<window::ClosedWindow> closed_scratch_;
  /// Pending windows that outlived their sessions, scored at next harvest.
  std::vector<DetachedWindows> detached_;
  /// Verdicts scored by the current take_verdicts() call.
  std::vector<window::WindowVerdict> verdicts_;
  std::size_t reported_ = 0;
  std::size_t discarded_ = 0;
  std::size_t windows_closed_ = 0;
  std::size_t verdicts_emitted_ = 0;
};

}  // namespace vqoe::core

// Initial-delay estimation from traffic (extension).
//
// The paper measures initial delay (Section 2.2) but leaves it out of its
// QoE model, citing its low impact. This extension estimates it anyway,
// from the same operator-visible chunk view, completing the impairment
// inventory without client instrumentation:
//
//   The player starts playback once the buffer holds ~T seconds of media.
//   An operator cannot see media seconds — but in steady state the pacing
//   interval equals the media duration of one chunk, so
//     media_seconds_per_byte ≈ steady_Δt / steady_chunk_size
//   calibrates bytes into playback seconds. The startup delay estimate is
//   the arrival time of the first chunk at which the cumulative buffered
//   media crosses the assumed start threshold.
//
// Evaluated in bench/ext_startup_delay against ground truth (MAE, median
// error, Pearson correlation).
#pragma once

#include <span>

#include "vqoe/core/features.h"

namespace vqoe::core {

struct StartupEstimatorConfig {
  /// Assumed buffer level (media seconds) at which playback begins. Players
  /// differ and fast-start ramps under-credit media, so a value below the
  /// nominal player threshold tracks the true start best (see the
  /// sensitivity sweep in bench/ext_startup_delay).
  double assumed_threshold_s = 2.5;
  /// Percentile of the inter-arrival distribution taken as the steady
  /// pacing interval.
  double steady_dt_percentile = 50.0;
  /// Percentile of the chunk-size distribution taken as the steady chunk
  /// size (high percentile: start-up ramps bias the lower quantiles).
  double steady_size_percentile = 75.0;
};

/// Estimates the initial delay (seconds from first media request to
/// playback start) of one session. Returns 0 for sessions with fewer than
/// three chunks; the estimate is clamped to the session's observed span.
[[nodiscard]] double estimate_startup_delay(std::span<const ChunkObs> chunks,
                                            const StartupEstimatorConfig& config = {});

}  // namespace vqoe::core

// Labelling rules (Sections 4.1-4.3).
//
// Ground truth is turned into discrete QoE classes exactly as the paper
// defines them:
//
//  * stalling, from the Rebuffering Ratio RR = Σ t_stall / t_total:
//      no stalling (RR = 0), mild (0 < RR <= 0.1), severe (RR > 0.1);
//    the 0.1 boundary is Krishnan & Sitaraman's abandonment threshold;
//  * average representation, from the session mean resolution μ:
//      LD (μ < 360), SD (360 <= μ <= 480), HD (μ > 480);
//  * representation variation, from the switch frequency F and the
//    normalized switch amplitude A (eq. 2) combined linearly:
//      none (Var = 0), mild, high.
#pragma once

#include <string>
#include <vector>

#include "vqoe/trace/weblog.h"

namespace vqoe::core {

enum class StallLabel : int { no_stalls = 0, mild_stalls = 1, severe_stalls = 2 };
enum class ReprLabel : int { ld = 0, sd = 1, hd = 2 };
enum class VariationLabel : int { none = 0, mild = 1, high = 2 };

/// RR boundary between mild and severe stalling (Section 4.1).
inline constexpr double kSevereRebufferingRatio = 0.1;

/// Resolution boundaries of the RQ rule (Section 4.2), in pixels of height.
inline constexpr double kSdMinHeight = 360.0;
inline constexpr double kSdMaxHeight = 480.0;

[[nodiscard]] StallLabel stall_label_from_rr(double rebuffering_ratio);
[[nodiscard]] ReprLabel repr_label_from_height(double mean_height);

/// Linear combination Var = F + amplitude_weight * A of Section 4.3 and its
/// thresholds into the three variation classes. The default mild threshold
/// leaves sessions with a single small-amplitude switch in the "no
/// variation" class: one early 1-rung correction is imperceptible (and, by
/// construction, leaves almost no trace in the traffic).
struct VariationRule {
  double amplitude_weight = 2.0;
  double mild_threshold = 1.5;  ///< Var > this -> at least mild
  double high_threshold = 6.0;  ///< Var > this -> high
};
[[nodiscard]] VariationLabel variation_label(std::size_t switch_count,
                                             double switch_amplitude,
                                             const VariationRule& rule = {});

/// Class display names in label order (the paper's table rows).
[[nodiscard]] const std::vector<std::string>& stall_class_names();
[[nodiscard]] const std::vector<std::string>& repr_class_names();
[[nodiscard]] const std::vector<std::string>& variation_class_names();

/// Labels straight from ground truth.
[[nodiscard]] StallLabel stall_label(const trace::SessionGroundTruth& truth);
[[nodiscard]] ReprLabel repr_label(const trace::SessionGroundTruth& truth);
[[nodiscard]] VariationLabel variation_label(const trace::SessionGroundTruth& truth,
                                             const VariationRule& rule = {});

}  // namespace vqoe::core

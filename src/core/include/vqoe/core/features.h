// Feature construction (Sections 4.1 and 4.2).
//
// The detectors never see ground truth — only the per-chunk transport view
// an operator gets from encrypted traffic. This header defines that view
// (ChunkObs) and the two constructed feature sets:
//
//  * the stall set: the 10 Table-1 metrics (RTT min/avg/max, BDP, BIF
//    avg/max, loss %, retransmission %, chunk size, chunk inter-arrival
//    time) x 7 summary statistics (min/max/mean/std/p25/p50/p75) = 70
//    features;
//  * the representation set: 14 metrics — the 10 above with chunk
//    inter-arrival replaced by its delta, plus the running average chunk
//    size, the chunk size delta, the running average throughput and the
//    throughput CUSUM — x 15 statistics (min/mean/max/std and the
//    5/10/15/20/25/50/75/80/85/90/95th percentiles) = 210 features.
//
// Units are chosen once here and used everywhere: sizes in KB, times in
// seconds, rates in kbit/s, RTT in ms, loss/retransmissions in percent.
// The switch-detection signal Δsize x Δt is therefore KB·s, which is the
// unit in which the paper's fixed CUSUM-std threshold of 500 lives.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "vqoe/net/tcp.h"
#include "vqoe/session/reconstruct.h"
#include "vqoe/trace/weblog.h"

namespace vqoe::core {

/// The operator's view of one media chunk download — all that survives
/// encryption.
struct ChunkObs {
  double request_time_s = 0.0;
  double arrival_time_s = 0.0;
  double size_bytes = 0.0;
  net::TransportStats transport;

  [[nodiscard]] double duration_s() const {
    return arrival_time_s - request_time_s;
  }
  /// Application goodput of this chunk in kbit/s.
  [[nodiscard]] double goodput_kbps() const {
    const double d = duration_s();
    return d > 0.0 ? size_bytes * 8.0 / d / 1000.0 : 0.0;
  }
};

/// Extracts the chunk view from *media* weblog records (others are
/// skipped). Works identically on cleartext and encrypted records.
[[nodiscard]] std::vector<ChunkObs> chunks_from_weblogs(
    std::span<const trace::WeblogRecord> records);

/// Extracts the chunk view from a reconstructed encrypted session.
[[nodiscard]] std::vector<ChunkObs> chunks_from_session(
    const session::ReconstructedSession& session);

/// Names of the 70 stall-detection features, in the order
/// stall_features() emits values. Naming scheme "<metric>:<stat>", e.g.
/// "chunk_size:min", "bdp:mean", "retrans:max".
[[nodiscard]] const std::vector<std::string>& stall_feature_names();

/// The 70-dimensional stall feature vector of a session.
[[nodiscard]] std::vector<double> stall_features(std::span<const ChunkObs> chunks);

/// stall_features() into a caller-owned buffer (cleared, then filled) —
/// the streaming monitors reuse one buffer across sessions instead of
/// allocating a fresh vector per classification.
void stall_features_into(std::span<const ChunkObs> chunks,
                         std::vector<double>& out);

/// Names of the 210 representation-detection features.
[[nodiscard]] const std::vector<std::string>& representation_feature_names();

/// The 210-dimensional representation feature vector of a session.
[[nodiscard]] std::vector<double> representation_features(
    std::span<const ChunkObs> chunks);

/// representation_features() into a caller-owned buffer (cleared, filled).
void representation_features_into(std::span<const ChunkObs> chunks,
                                  std::vector<double>& out);

/// The switch-detection time series Δsize x Δt (KB·s) over consecutive
/// chunks, after dropping the first `skip_initial_s` seconds of the session
/// (the start-up filter of Section 4.3). Empty when fewer than three chunks
/// remain.
[[nodiscard]] std::vector<double> switch_signal(std::span<const ChunkObs> chunks,
                                                double skip_initial_s = 10.0);

}  // namespace vqoe::core

// Mean Opinion Score estimation (extension).
//
// The paper stops at detecting the three impairment classes; its cited QoE
// literature goes one step further and maps impairments to a MOS. This
// header implements that last step so the pipeline can report a single
// user-facing score:
//
//  * the stall/initial-delay core follows Mok, Chan & Chang, "Measuring the
//    Quality of Experience of HTTP video streaming" (IM 2011) — the paper's
//    reference [9]:   MOS = 4.23 − 0.0672·L_ti − 0.742·L_fr − 0.106·L_td
//    with three-level (0/1/2) discretizations of initial delay, rebuffer
//    frequency and rebuffer duration;
//  * an average-quality adjustment in the spirit of Lewcio et al. [10]
//    (lower representations cap the achievable score) and a switching
//    penalty from Hoßfeld et al. [11].
//
// Two entry points: from ground truth (for simulation studies) and from a
// detected QoeReport (what an operator computes from encrypted traffic).
#pragma once

#include "vqoe/core/labels.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/trace/weblog.h"

namespace vqoe::core {

/// Coefficients and level thresholds of the MOS mapping. Defaults follow
/// Mok et al. (IM 2011); the quality adjustments are this library's
/// extension knobs.
struct MosModel {
  // Mok et al. regression coefficients.
  double base = 4.23;
  double w_initial = 0.0672;
  double w_stall_frequency = 0.742;
  double w_stall_duration = 0.106;

  // Level thresholds (level 0 / 1 / 2).
  double initial_low_s = 1.0;        ///< L_ti = 0 below this
  double initial_high_s = 5.0;       ///< L_ti = 2 above this
  double frequency_low_hz = 0.02;    ///< L_fr = 0 below this
  double frequency_high_hz = 0.15;   ///< L_fr = 2 above this
  double duration_low_s = 5.0;       ///< L_td = 0 below this (per stall)
  double duration_high_s = 10.0;     ///< L_td = 2 above this

  // Quality-of-picture adjustments (extension).
  double ld_penalty = 0.8;           ///< subtracted for LD average quality
  double sd_penalty = 0.3;           ///< subtracted for SD average quality
  double switching_penalty = 0.25;   ///< subtracted when switching detected

  double floor = 1.0;                ///< MOS scale bottom
  double ceil = 5.0;                 ///< MOS scale top (4.23 base + margin)
};

/// Three-level discretization used by the Mok model.
[[nodiscard]] int initial_delay_level(double initial_delay_s,
                                      const MosModel& model = {});
[[nodiscard]] int stall_frequency_level(int stall_count, double duration_s,
                                        const MosModel& model = {});
[[nodiscard]] int stall_duration_level(double total_stall_s, int stall_count,
                                       const MosModel& model = {});

/// MOS from full ground truth (simulation studies, instrumented clients).
[[nodiscard]] double mos_from_ground_truth(const trace::SessionGroundTruth& truth,
                                           const MosModel& model = {});

/// MOS from a detected QoeReport — the operator path. The coarse detected
/// classes are mapped to representative impairment levels:
/// no/mild/severe stalling -> (L_fr, L_td) of (0,0)/(1,1)/(2,2);
/// the detected representation and switching flags apply the quality
/// adjustments. `startup_delay_estimate_s` feeds L_ti (use
/// estimate_startup_delay(); pass 0 to skip the initial-delay term).
[[nodiscard]] double mos_from_report(const QoeReport& report,
                                     double startup_delay_estimate_s = 0.0,
                                     const MosModel& model = {});

}  // namespace vqoe::core

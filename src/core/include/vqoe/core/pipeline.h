// End-to-end QoE measurement pipeline.
//
// Ties the framework together the way an operator would deploy it
// (Section 8): train the detectors once on a labelled (cleartext-derived)
// corpus, then assess any session — cleartext or encrypted, reconstructed
// or URI-grouped — from its chunk view alone, reporting the three
// impairment verdicts.
//
// Also hosts the evaluation drivers the bench harnesses share: confusion
// matrices for the two classifiers and the two-population accuracy of the
// switch detector.
#pragma once

#include <span>
#include <vector>

#include "vqoe/core/detectors.h"
#include "vqoe/ml/metrics.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::core {

/// One labelled session: the operator-visible chunk view plus ground truth.
struct SessionRecord {
  std::vector<ChunkObs> chunks;
  trace::SessionGroundTruth truth;
};

/// Builds labelled sessions from a generated corpus by grouping cleartext
/// weblogs on the URI session ID (the paper's Section 3.3 preparation).
/// Sessions without media records are dropped.
[[nodiscard]] std::vector<SessionRecord> sessions_from_corpus(
    const workload::Corpus& corpus);

/// Builds labelled sessions from *encrypted* weblogs: reconstructs session
/// boundaries (Section 5.2) and joins the instrumented-client ground truth
/// by timestamp. Unmatched reconstructions are dropped. Pass the service's
/// host lists via `options` for non-YouTube corpora.
[[nodiscard]] std::vector<SessionRecord> sessions_from_encrypted(
    std::span<const trace::WeblogRecord> encrypted_records,
    std::span<const trace::SessionGroundTruth> truths,
    const session::ReconstructionOptions& options = {});

struct PipelineConfig {
  ForestDetectorConfig stall;
  ForestDetectorConfig representation;
  SwitchDetector::Config switches;
  /// Train the representation detector only on adaptive sessions (the
  /// paper keeps HAS sessions for the representation/switch models).
  bool representation_adaptive_only = true;
  /// Worker threads for forest training (vqoe::par pool). 0 leaves the
  /// process-wide setting (VQOE_THREADS / par::set_threads) untouched;
  /// any other value is applied via par::set_threads before training —
  /// a process-wide override, since the pool is shared. 1 trains fully
  /// sequentially. Results are identical for every value.
  int threads = 0;
};

/// A session's assessed QoE.
struct QoeReport {
  StallLabel stall = StallLabel::no_stalls;
  ReprLabel representation = ReprLabel::ld;
  bool quality_switches = false;
  double switch_score = 0.0;  ///< the CUSUM-std statistic behind the verdict
};

class QoePipeline {
 public:
  QoePipeline() = default;

  /// Trains all three detectors on labelled sessions.
  static QoePipeline train(std::span<const SessionRecord> sessions,
                           const PipelineConfig& config = {});

  /// Assembles a pipeline from already-trained detectors (model_io.h).
  static QoePipeline from_parts(StallDetector stall, RepresentationDetector repr,
                                SwitchDetector switches);

  /// Assesses one session from its chunk view.
  [[nodiscard]] QoeReport assess(std::span<const ChunkObs> chunks) const;

  /// assess() through caller-owned scratch buffers: the feature vectors
  /// and forest-input projections of both detectors reuse `scratch`
  /// instead of allocating per session. One scratch per scoring thread
  /// (OnlineMonitor and each engine shard own theirs).
  [[nodiscard]] QoeReport assess(std::span<const ChunkObs> chunks,
                                 DetectorScratch& scratch) const;

  /// assess() plus the forest confidences behind the two labels — the
  /// scoring path of the live window-verdict stream. The embedded report
  /// is produced by the same predict() calls assess() makes (confidence is
  /// an extra predict_proba pass), so a windowed verdict over a span is
  /// bit-identical to assess() over that span — the invariant behind the
  /// full-session-window equivalence tests.
  struct ScoredReport {
    QoeReport report;
    double stall_confidence = 0.0;
    double repr_confidence = 0.0;  ///< 0 when the detector is untrained
  };
  [[nodiscard]] ScoredReport assess_scored(std::span<const ChunkObs> chunks,
                                           DetectorScratch& scratch) const;

  [[nodiscard]] const StallDetector& stall_detector() const { return stall_; }
  [[nodiscard]] const RepresentationDetector& representation_detector() const {
    return repr_;
  }
  [[nodiscard]] const SwitchDetector& switch_detector() const { return switch_; }

 private:
  StallDetector stall_;
  RepresentationDetector repr_;
  SwitchDetector switch_;
};

/// Confusion matrix of a trained stall detector over labelled sessions.
[[nodiscard]] ml::ConfusionMatrix evaluate_stall(
    const StallDetector& detector, std::span<const SessionRecord> sessions);

/// Confusion matrix of a trained representation detector over the adaptive
/// sessions in `sessions` (non-adaptive ones are skipped when
/// `adaptive_only`).
[[nodiscard]] ml::ConfusionMatrix evaluate_representation(
    const RepresentationDetector& detector,
    std::span<const SessionRecord> sessions, bool adaptive_only = true);

/// Two-population evaluation of the switch detector (Section 4.3 / 5.6):
/// the fraction of no-switch sessions scored below the threshold and of
/// switch sessions scored above it.
struct SwitchEvaluation {
  double accuracy_without = 0.0;  ///< no-switch sessions correctly below
  double accuracy_with = 0.0;     ///< switch sessions correctly above
  std::size_t sessions_without = 0;
  std::size_t sessions_with = 0;
};
[[nodiscard]] SwitchEvaluation evaluate_switch(
    const SwitchDetector& detector, std::span<const SessionRecord> sessions,
    bool adaptive_only = true);

}  // namespace vqoe::core

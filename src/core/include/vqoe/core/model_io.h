// Model persistence for the QoE framework.
//
// The paper's deployment splits training from monitoring (Section 8): the
// models are built once from labelled data, then "directly applied on the
// passively monitored traffic". These helpers serialize trained detectors
// (selected feature list + random forest, or the switch detector's
// configuration) as plain text, and a whole pipeline as a directory of
// model files.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "vqoe/core/detectors.h"
#include "vqoe/core/pipeline.h"

namespace vqoe::core {

/// Streams a trained stall detector (feature selection + forest).
void save(const StallDetector& detector, std::ostream& os);
/// Loads a detector written by save(). Throws std::runtime_error on
/// malformed input and std::invalid_argument when the stored feature names
/// are not valid stall features.
[[nodiscard]] StallDetector load_stall_detector(std::istream& is);

/// Streams a trained representation detector.
void save(const RepresentationDetector& detector, std::ostream& os);
[[nodiscard]] RepresentationDetector load_representation_detector(std::istream& is);

/// Streams a switch detector's configuration.
void save(const SwitchDetector& detector, std::ostream& os);
[[nodiscard]] SwitchDetector load_switch_detector(std::istream& is);

/// Persists a full pipeline as `stall.model`, `representation.model` and
/// `switch.model` inside `dir` (created if absent). Untrained detectors are
/// skipped.
void save_pipeline(const QoePipeline& pipeline, const std::filesystem::path& dir);

/// Loads a pipeline saved by save_pipeline(). Missing representation/switch
/// files yield default-constructed detectors; a missing stall model throws.
[[nodiscard]] QoePipeline load_pipeline(const std::filesystem::path& dir);

}  // namespace vqoe::core

// The three QoE impairment detectors of the paper.
//
//  * StallDetector (Section 4.1): Random Forest over the 70-feature stall
//    set, reduced by CFS + Best First feature selection, classifying
//    no/mild/severe stalling. Trained class-balanced.
//  * RepresentationDetector (Section 4.2): Random Forest over the
//    210-feature set, CFS-selected, classifying LD/SD/HD average quality.
//  * SwitchDetector (Section 4.3): no learning — the standard deviation of
//    the CUSUM control chart of Δsize x Δt, thresholded at a fixed value
//    (500 KB·s in the paper, eq. 3) after dropping the first 10 s of the
//    session.
//
// Detectors are trained once on cleartext-derived labels and then applied
// unchanged to encrypted traffic (Section 5): nothing in their inputs
// requires cleartext.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vqoe/core/features.h"
#include "vqoe/core/labels.h"
#include "vqoe/ml/dataset.h"
#include "vqoe/ml/random_forest.h"

namespace vqoe::core {

/// Builds the 70-column stall ml::Dataset from per-session chunk views and
/// ground-truth labels. sessions.size() must equal labels.size().
[[nodiscard]] ml::Dataset build_stall_dataset(
    std::span<const std::vector<ChunkObs>> sessions,
    std::span<const StallLabel> labels);

/// Builds the 210-column representation ml::Dataset.
[[nodiscard]] ml::Dataset build_representation_dataset(
    std::span<const std::vector<ChunkObs>> sessions,
    std::span<const ReprLabel> labels);

/// Reusable buffers for the streaming classification path. The allocating
/// classify()/classify_features() overloads build a fresh feature vector
/// and projection per call; long-lived scorers (OnlineMonitor, each engine
/// shard) own one DetectorScratch and pass it to the scratch overloads so
/// per-session heap traffic disappears. Not for concurrent sharing — one
/// instance per scoring thread.
struct DetectorScratch {
  std::vector<double> features;   ///< full 70-/210-dim feature vector
  std::vector<double> projected;  ///< selected columns, forest input order
  std::vector<double> proba;      ///< class-distribution output buffer
};

/// Shared configuration of the two forest-based detectors.
struct ForestDetectorConfig {
  ml::ForestParams forest{.num_trees = 60, .tree = {}, .seed = 1,
                          .compute_oob = false};
  /// Run CFS + Best First on the training set. When false and
  /// `fixed_features` is empty, all features are used.
  bool feature_selection = true;
  /// Overrides feature selection with a known-good feature list — the
  /// paper's Section 5 procedure, where the encrypted evaluation reuses the
  /// features selected on cleartext data.
  std::vector<std::string> fixed_features;
  /// Balance classes by undersampling before training (Section 4.1).
  bool balance_training = true;
  std::uint64_t seed = 99;
};

/// Random-Forest stall severity detector.
class StallDetector {
 public:
  StallDetector() = default;

  /// Trains on a 70-column dataset from build_stall_dataset().
  static StallDetector train(const ml::Dataset& data,
                             const ForestDetectorConfig& config = {});

  /// Classifies one session from its operator-visible chunk view.
  [[nodiscard]] StallLabel classify(std::span<const ChunkObs> chunks) const;

  /// classify() through caller-owned scratch buffers: no per-call heap
  /// allocation (the streaming monitors' hot path).
  [[nodiscard]] StallLabel classify(std::span<const ChunkObs> chunks,
                                    DetectorScratch& scratch) const;

  /// classify() plus the forest's confidence in the returned label — the
  /// share of trees voting for it. The label comes from the identical
  /// predict() call the confidence-free overload makes (confidence is a
  /// separate predict_proba pass over the same projection), so asking for
  /// confidence can never change a verdict.
  [[nodiscard]] StallLabel classify(std::span<const ChunkObs> chunks,
                                    DetectorScratch& scratch,
                                    double& confidence) const;

  /// Classifies a precomputed full (70-dim) stall feature vector.
  [[nodiscard]] StallLabel classify_features(std::span<const double> features) const;

  [[nodiscard]] const std::vector<std::string>& selected_features() const {
    return selected_;
  }
  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  [[nodiscard]] bool trained() const { return forest_.trained(); }

  /// Rebuilds a detector from persisted parts (model_io.h). The forest's
  /// feature layout must equal `selected`, and every name must be a valid
  /// stall feature.
  static StallDetector from_parts(ml::RandomForest forest,
                                  std::vector<std::string> selected);

 private:
  ml::RandomForest forest_;
  std::vector<std::string> selected_;
  std::vector<std::size_t> selected_idx_;  ///< indices into the full 70-dim vector
};

/// Random-Forest average-representation detector.
class RepresentationDetector {
 public:
  RepresentationDetector() = default;

  /// Trains on a 210-column dataset from build_representation_dataset().
  static RepresentationDetector train(const ml::Dataset& data,
                                      const ForestDetectorConfig& config = {});

  [[nodiscard]] ReprLabel classify(std::span<const ChunkObs> chunks) const;
  /// classify() through caller-owned scratch buffers (no per-call heap).
  [[nodiscard]] ReprLabel classify(std::span<const ChunkObs> chunks,
                                   DetectorScratch& scratch) const;
  /// classify() plus the forest's vote share behind the label (see the
  /// StallDetector overload: the label path is unchanged).
  [[nodiscard]] ReprLabel classify(std::span<const ChunkObs> chunks,
                                   DetectorScratch& scratch,
                                   double& confidence) const;
  [[nodiscard]] ReprLabel classify_features(std::span<const double> features) const;

  [[nodiscard]] const std::vector<std::string>& selected_features() const {
    return selected_;
  }
  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  [[nodiscard]] bool trained() const { return forest_.trained(); }

  /// Rebuilds a detector from persisted parts (model_io.h).
  static RepresentationDetector from_parts(ml::RandomForest forest,
                                           std::vector<std::string> selected);

 private:
  ml::RandomForest forest_;
  std::vector<std::string> selected_;
  std::vector<std::size_t> selected_idx_;
};

/// CUSUM-based representation switch detector (eq. 3).
class SwitchDetector {
 public:
  struct Config {
    double threshold = 500.0;    ///< KB·s, the paper's fixed decision value
    double skip_initial_s = 10.0;
  };

  SwitchDetector() = default;
  explicit SwitchDetector(Config config) : config_(config) {}

  /// Detector statistic STD(CUSUM(Δsize x Δt)); 0 for very short sessions.
  [[nodiscard]] double score(std::span<const ChunkObs> chunks) const;

  /// True when the session is predicted to contain quality switches.
  [[nodiscard]] bool detect(std::span<const ChunkObs> chunks) const {
    return score(chunks) > config_.threshold;
  }

  [[nodiscard]] const Config& config() const { return config_; }

  /// Threshold that maximizes balanced accuracy between the two score
  /// populations (used to calibrate the fixed value on training data).
  [[nodiscard]] static double calibrate_threshold(
      std::span<const double> scores_without_switches,
      std::span<const double> scores_with_switches);

 private:
  Config config_;
};

}  // namespace vqoe::core

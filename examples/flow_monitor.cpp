// Flow-level monitoring: QoE detection when the operator has NetFlow-style
// export instead of an HTTP proxy.
//
//   1. train the pipeline on a flow-view labelled corpus (the observation
//      mode must match between training and monitoring),
//   2. take encrypted traffic, export it as 0.5 s flow slices,
//   3. reassemble download bursts per connection, rebuild sessions, assess.
//
// Build & run:  ./build/examples/flow_monitor
#include <cstdio>

#include "vqoe/core/pipeline.h"
#include "vqoe/flow/export.h"
#include "vqoe/flow/reassembly.h"
#include "vqoe/workload/corpus.h"

int main() {
  using namespace vqoe;
  constexpr double kSliceS = 0.5;

  auto flow_view = [&](const workload::Corpus& corpus) {
    flow::FlowExportOptions options;
    options.slice_s = kSliceS;
    const auto slices = flow::export_flows(corpus.weblogs, options);
    const auto bursts = flow::segment_bursts(slices, {});
    const auto records = flow::bursts_to_weblogs(bursts);
    return core::sessions_from_encrypted(records, corpus.truths);
  };

  // --- train on the flow view of a labelled corpus -------------------------
  std::printf("building flow-view training corpus (%.1f s slices)...\n",
              kSliceS);
  auto train_options = workload::cleartext_corpus_options(2500, 21);
  train_options.keep_session_results = false;
  const auto train_corpus = workload::generate_corpus(train_options);
  const auto train_sessions = flow_view(train_corpus);
  std::printf("  %zu labelled flow-view sessions\n", train_sessions.size());
  const auto pipeline = core::QoePipeline::train(train_sessions);

  // --- monitor encrypted traffic through the same lens ---------------------
  auto live_options = workload::encrypted_corpus_options(200, 22);
  live_options.keep_session_results = false;
  auto live = workload::generate_corpus(live_options);
  live.weblogs = trace::encrypt_view(std::move(live.weblogs));

  flow::FlowExportOptions export_options;
  export_options.slice_s = kSliceS;
  const auto slices = flow::export_flows(live.weblogs, export_options);
  const auto bursts = flow::segment_bursts(slices, {});
  std::printf("\nlive: %zu weblog records -> %zu flow slices -> %zu bursts\n",
              live.weblogs.size(), slices.size(), bursts.size());

  const auto sessions = flow_view(live);
  std::size_t stalled = 0, ld = 0;
  for (const auto& s : sessions) {
    const auto report = pipeline.assess(s.chunks);
    if (report.stall != core::StallLabel::no_stalls) ++stalled;
    if (report.representation == core::ReprLabel::ld) ++ld;
  }
  std::printf("assessed %zu sessions: %.1f%% flagged stalled, %.1f%% LD\n",
              sessions.size(),
              100.0 * static_cast<double>(stalled) / sessions.size(),
              100.0 * static_cast<double>(ld) / sessions.size());

  // Ground truth comparison (the instrumented-handset view).
  const auto cm = core::evaluate_stall(pipeline.stall_detector(), sessions);
  std::printf("stall accuracy vs ground truth: %.1f%% "
              "(flow-level observation; proxy-level reaches higher — see "
              "bench/ext_flow_view)\n",
              100.0 * cm.accuracy());
  return 0;
}

// Quickstart: train the QoE detection framework on a simulated operator
// corpus and assess a fresh (unlabelled) session — the ten-minute tour of
// the public API.
//
//   1. generate a labelled cleartext corpus (simulator + proxy weblogs),
//   2. train the three detectors (stalls, average representation, switches),
//   3. simulate a new session, strip it to the operator view,
//   4. report its QoE.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "vqoe/core/pipeline.h"
#include "vqoe/net/channel.h"
#include "vqoe/sim/player.h"
#include "vqoe/workload/corpus.h"

int main() {
  using namespace vqoe;

  // --- 1. A labelled training corpus --------------------------------------
  // 2000 sessions across the operator's condition mix; ground truth comes
  // from the simulator exactly like the paper's comes from cleartext URIs.
  std::printf("generating training corpus...\n");
  auto options = workload::cleartext_corpus_options(/*sessions=*/2000,
                                                    /*seed=*/1);
  options.keep_session_results = false;
  const auto corpus = workload::generate_corpus(options);
  const auto sessions = core::sessions_from_corpus(corpus);
  std::printf("  %zu sessions, %zu weblog records\n", sessions.size(),
              corpus.weblogs.size());

  // --- 2. Train the framework --------------------------------------------
  std::printf("training detectors (CFS feature selection + random forests)...\n");
  const auto pipeline = core::QoePipeline::train(sessions);
  std::printf("  stall model uses %zu features:",
              pipeline.stall_detector().selected_features().size());
  for (const auto& f : pipeline.stall_detector().selected_features()) {
    std::printf(" %s", f.c_str());
  }
  std::printf("\n");

  // --- 3. A new session the operator has never seen -----------------------
  // Simulate a commuter watching a 3-minute video over a fluctuating radio
  // channel, then reduce it to what an operator sees under TLS.
  std::printf("simulating an unlabelled commuter session...\n");
  sim::Catalog catalog{32, /*seed=*/7};
  std::mt19937_64 rng{7};
  const auto& video = catalog.sample(rng);
  auto channel = net::make_commute_channel(/*seed=*/99);
  const sim::HasPlayer player{sim::PlayerConfig{}};
  const auto session = player.play(video, *channel, /*seed=*/1234);

  std::vector<core::ChunkObs> operator_view;
  for (const auto& c : session.chunks) {
    operator_view.push_back({c.request_time_s, c.arrival_time_s,
                             static_cast<double>(c.size_bytes), c.transport});
  }

  // --- 4. Assess and compare with the hidden ground truth -----------------
  const core::QoeReport report = pipeline.assess(operator_view);

  auto stall_name = [](core::StallLabel l) {
    return core::stall_class_names()[static_cast<std::size_t>(l)].c_str();
  };
  auto repr_name = [](core::ReprLabel l) {
    return core::repr_class_names()[static_cast<std::size_t>(l)].c_str();
  };

  std::printf("\n=== QoE report (from traffic only) ===\n");
  std::printf("  stalling          : %s\n", stall_name(report.stall));
  std::printf("  avg representation: %s\n", repr_name(report.representation));
  std::printf("  quality switches  : %s (CUSUM score %.0f, threshold %.0f)\n",
              report.quality_switches ? "yes" : "no", report.switch_score,
              pipeline.switch_detector().config().threshold);

  std::printf("\n=== hidden ground truth ===\n");
  std::printf("  rebuffering ratio : %.3f -> %s\n", session.rebuffering_ratio(),
              stall_name(core::stall_label_from_rr(session.rebuffering_ratio())));
  std::printf("  mean height       : %.0f -> %s\n", session.average_height(),
              repr_name(core::repr_label_from_height(session.average_height())));
  std::printf("  switches          : %zu (amplitude %.2f)\n",
              session.switch_count(), session.switch_amplitude());
  return 0;
}

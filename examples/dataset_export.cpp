// Dataset generation and the cleartext -> encrypted degradation, end to end
// on disk: produce the two corpora of the paper as CSV files, reload them,
// and verify that session reconstruction recovers what TLS hides.
//
// Demonstrates the trace persistence layer (vqoe/trace/csv.h) and the
// session reconstruction quality metric.
//
// Build & run:  ./build/examples/dataset_export [output_dir]
#include <cstdio>
#include <filesystem>

#include "vqoe/session/reconstruct.h"
#include "vqoe/trace/csv.h"
#include "vqoe/workload/corpus.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "vqoe_data";
  std::filesystem::create_directories(dir);

  // --- the cleartext operator corpus --------------------------------------
  auto clear_options = workload::cleartext_corpus_options(500, 2024);
  clear_options.keep_session_results = false;
  const auto clear = workload::generate_corpus(clear_options);
  trace::write_weblogs_csv(dir / "cleartext_weblogs.csv", clear.weblogs);
  trace::write_ground_truth_csv(dir / "cleartext_truth.csv", clear.truths);
  std::printf("cleartext corpus: %zu records, %zu sessions -> %s\n",
              clear.weblogs.size(), clear.truths.size(), dir.c_str());

  // --- the encrypted instrumented-handset corpus --------------------------
  auto enc_options = workload::encrypted_corpus_options(150, 2025);
  enc_options.keep_session_results = false;
  auto enc = workload::generate_corpus(enc_options);
  const auto encrypted_weblogs = trace::encrypt_view(std::move(enc.weblogs));
  trace::write_weblogs_csv(dir / "encrypted_weblogs.csv", encrypted_weblogs);
  trace::write_ground_truth_csv(dir / "encrypted_truth.csv", enc.truths);
  std::printf("encrypted corpus: %zu records, %zu sessions\n",
              encrypted_weblogs.size(), enc.truths.size());

  // --- reload from disk and reconstruct -----------------------------------
  const auto reloaded = trace::read_weblogs_csv(dir / "encrypted_weblogs.csv");
  const auto truths = trace::read_ground_truth_csv(dir / "encrypted_truth.csv");
  std::printf("reloaded %zu encrypted records, %zu truth rows\n",
              reloaded.size(), truths.size());

  const auto sessions = session::reconstruct(reloaded);
  const double accuracy = session::reconstruction_accuracy(sessions, truths);
  std::printf("\nsession reconstruction: %zu sessions recovered from %zu "
              "launched; %.1f%% with exact chunk membership\n",
              sessions.size(), truths.size(), 100.0 * accuracy);

  // Show what TLS actually hides, record by record.
  std::printf("\nfirst media record, cleartext vs encrypted view:\n");
  for (const auto& r : clear.weblogs) {
    if (r.kind != trace::RecordKind::media) continue;
    std::printf("  cleartext: host=%s size=%llu session_id=%s itag=%dp%s\n",
                r.host.c_str(),
                static_cast<unsigned long long>(r.object_size_bytes),
                r.session_id.c_str(), r.itag_height,
                r.is_audio ? " (audio)" : "");
    break;
  }
  for (const auto& r : reloaded) {
    if (r.kind != trace::RecordKind::media) continue;
    std::printf("  encrypted: host=%s size=%llu session_id=%s itag=%d\n",
                r.host.c_str(),
                static_cast<unsigned long long>(r.object_size_bytes),
                r.session_id.empty() ? "<hidden>" : r.session_id.c_str(),
                r.itag_height);
    break;
  }
  return 0;
}

// Operator monitoring: the deployment the paper targets (Section 8).
//
// A mobile operator sees only encrypted weblogs from many subscribers. This
// example:
//   1. trains the framework offline on a labelled (cleartext-era) corpus
//      and persists the models to disk (train once, deploy many),
//   2. reloads the models on the "monitoring host",
//   3. streams a day of encrypted traffic record-by-record through the
//      OnlineMonitor, which recovers session boundaries incrementally
//      (domain filter + page markers + idle gaps — no URIs, no session IDs)
//      and emits a QoE report the moment each session ends,
//   4. prints a per-subscriber QoE dashboard.
//
// Build & run:  ./build/examples/operator_monitor
#include <cstdio>
#include <filesystem>
#include <map>

#include "vqoe/core/model_io.h"
#include "vqoe/core/online.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/trace/weblog.h"
#include "vqoe/workload/corpus.h"

int main() {
  using namespace vqoe;

  // --- offline: train on the labelled corpus, persist to disk -------------
  std::printf("training on labelled corpus...\n");
  auto train_options = workload::cleartext_corpus_options(2500, 11);
  train_options.keep_session_results = false;
  const auto training =
      core::sessions_from_corpus(workload::generate_corpus(train_options));
  const auto model_dir =
      std::filesystem::temp_directory_path() / "vqoe_operator_models";
  core::save_pipeline(core::QoePipeline::train(training), model_dir);
  std::printf("  models saved to %s\n", model_dir.c_str());

  // --- monitoring host: load the models ------------------------------------
  const auto pipeline = core::load_pipeline(model_dir);

  // --- online: a day of encrypted traffic ---------------------------------
  // 40 subscribers, mixed conditions, everything TLS — the operator's feed.
  std::printf("capturing encrypted traffic...\n");
  auto live_options = workload::cleartext_corpus_options(300, 77);
  live_options.adaptive_fraction = 1.0;  // modern clients: all adaptive
  live_options.subscribers = 40;
  live_options.keep_session_results = false;
  auto live = workload::generate_corpus(live_options);
  const auto encrypted = trace::encrypt_view(std::move(live.weblogs));
  std::printf("  %zu encrypted records from %zu subscribers\n",
              encrypted.size(), live_options.subscribers);

  // --- stream records through the online monitor --------------------------
  struct SubscriberStats {
    std::size_t sessions = 0;
    std::size_t stalled = 0;
    std::size_t severe = 0;
    std::size_t low_def = 0;
    std::size_t switching = 0;
  };
  std::map<std::string, SubscriberStats> per_subscriber;

  core::OnlineMonitorConfig monitor_config;
  monitor_config.min_chunks = 3;
  core::OnlineMonitor monitor{pipeline, monitor_config};

  auto account = [&](const core::CompletedSession& s) {
    SubscriberStats& stats = per_subscriber[s.subscriber_id];
    stats.sessions++;
    if (s.report.stall != core::StallLabel::no_stalls) stats.stalled++;
    if (s.report.stall == core::StallLabel::severe_stalls) stats.severe++;
    if (s.report.representation == core::ReprLabel::ld) stats.low_def++;
    if (s.report.quality_switches) stats.switching++;
  };

  for (const trace::WeblogRecord& record : encrypted) {
    for (const auto& done : monitor.ingest(record)) account(done);
  }
  for (const auto& done : monitor.flush()) account(done);
  std::printf("  online monitor reported %zu sessions "
              "(ground truth: %zu launched)\n\n",
              monitor.sessions_reported(), live.truths.size());

  std::printf("%-10s %-9s %-9s %-9s %-6s %-10s %s\n", "subscriber", "sessions",
              "stalled", "severe", "LD", "switching", "flag");
  std::size_t total = 0, total_stalled = 0;
  for (const auto& [subscriber, stats] : per_subscriber) {
    total += stats.sessions;
    total_stalled += stats.stalled;
    const bool flag =
        stats.sessions >= 3 && stats.stalled * 2 >= stats.sessions;
    std::printf("%-10s %-9zu %-9zu %-9zu %-6zu %-10zu %s\n", subscriber.c_str(),
                stats.sessions, stats.stalled, stats.severe, stats.low_def,
                stats.switching, flag ? "<< degraded QoE" : "");
  }
  std::printf("\nnetwork-wide: %zu sessions, %.1f%% with stalling detected\n",
              total,
              total ? 100.0 * static_cast<double>(total_stalled) /
                          static_cast<double>(total)
                    : 0.0);
  return 0;
}

// Operator monitoring: the deployment the paper targets (Section 8).
//
// A mobile operator sees only encrypted weblogs from many subscribers. This
// example:
//   1. trains the framework offline on a labelled (cleartext-era) corpus
//      and persists the models to disk (train once, deploy many),
//   2. reloads the models on the "monitoring host",
//   3. streams a day of encrypted traffic record-by-record through the
//      sharded MonitorEngine: records are hash-partitioned by subscriber
//      onto four OnlineMonitor shards, session boundaries are recovered
//      incrementally (domain filter + page markers + idle gaps — no URIs,
//      no session IDs) in parallel, and completed QoE reports are
//      harvested while the stream is still flowing,
//   4. turns on 10-second windowing, so every shard also emits live
//      mid-session WindowVerdicts (harvested with harvest_verdicts()),
//   5. prints a per-subscriber QoE dashboard plus the engine's shard
//      statistics.
//
// Build & run:  ./build/examples/operator_monitor
#include <cstdio>
#include <filesystem>
#include <map>

#include "vqoe/core/model_io.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/engine/engine.h"
#include "vqoe/trace/weblog.h"
#include "vqoe/workload/corpus.h"

int main() {
  using namespace vqoe;

  // --- offline: train on the labelled corpus, persist to disk -------------
  std::printf("training on labelled corpus...\n");
  auto train_options = workload::cleartext_corpus_options(2500, 11);
  train_options.keep_session_results = false;
  const auto training =
      core::sessions_from_corpus(workload::generate_corpus(train_options));
  const auto model_dir =
      std::filesystem::temp_directory_path() / "vqoe_operator_models";
  core::save_pipeline(core::QoePipeline::train(training), model_dir);
  std::printf("  models saved to %s\n", model_dir.c_str());

  // --- monitoring host: load the models ------------------------------------
  const auto pipeline = core::load_pipeline(model_dir);

  // --- online: a day of encrypted traffic ---------------------------------
  // 40 subscribers, mixed conditions, everything TLS — the operator's feed.
  std::printf("capturing encrypted traffic...\n");
  auto live_options = workload::cleartext_corpus_options(300, 77);
  live_options.adaptive_fraction = 1.0;  // modern clients: all adaptive
  live_options.subscribers = 40;
  live_options.keep_session_results = false;
  auto live = workload::generate_corpus(live_options);
  const auto encrypted = trace::encrypt_view(std::move(live.weblogs));
  std::printf("  %zu encrypted records from %zu subscribers\n",
              encrypted.size(), live_options.subscribers);

  // --- stream records through the online monitor --------------------------
  struct SubscriberStats {
    std::size_t sessions = 0;
    std::size_t stalled = 0;
    std::size_t severe = 0;
    std::size_t low_def = 0;
    std::size_t switching = 0;
  };
  std::map<std::string, SubscriberStats> per_subscriber;

  engine::EngineConfig engine_config;
  engine_config.shards = 4;
  engine_config.monitor.min_chunks = 3;
  // Mid-session visibility: a verdict every 10 stream-seconds per session
  // (tumbling windows), scored on windows with at least 2 chunks.
  engine_config.monitor.window.length_s = 10.0;
  engine_config.monitor.window.min_chunks = 2;
  engine::MonitorEngine monitor{pipeline, engine_config};

  auto account = [&](const core::CompletedSession& s) {
    SubscriberStats& stats = per_subscriber[s.subscriber_id];
    stats.sessions++;
    if (s.report.stall != core::StallLabel::no_stalls) stats.stalled++;
    if (s.report.stall == core::StallLabel::severe_stalls) stats.severe++;
    if (s.report.representation == core::ReprLabel::ld) stats.low_def++;
    if (s.report.quality_switches) stats.switching++;
  };

  // Harvest completed sessions while the stream is still flowing — the
  // "report issues in real time" shape of Section 8.
  std::size_t fed = 0;
  std::size_t harvested_live = 0;
  std::size_t verdicts_live = 0;
  std::size_t verdicts_stalled = 0;
  auto account_verdicts = [&] {
    for (const auto& v : monitor.harvest_verdicts()) {
      ++verdicts_live;
      if (v.stall != static_cast<std::uint8_t>(core::StallLabel::no_stalls)) {
        ++verdicts_stalled;
      }
    }
  };
  for (const trace::WeblogRecord& record : encrypted) {
    monitor.ingest(record);
    if (++fed % 4096 == 0) {
      for (const auto& done : monitor.harvest()) {
        account(done);
        ++harvested_live;
      }
      account_verdicts();
    }
  }
  for (const auto& done : monitor.drain()) account(done);
  account_verdicts();  // the tail flushed by drain()

  const engine::EngineStats engine_stats = monitor.stats();
  std::printf("  engine reported %llu sessions over %zu shards, %llu "
              "harvested mid-stream (ground truth: %zu launched)\n",
              static_cast<unsigned long long>(engine_stats.sessions_reported),
              monitor.shard_count(),
              static_cast<unsigned long long>(harvested_live),
              live.truths.size());
  std::printf("  live verdict stream: %llu windows closed, %llu verdicts "
              "(%zu harvested mid-stream, %zu flagged stalling)\n",
              static_cast<unsigned long long>(engine_stats.windows_emitted),
              static_cast<unsigned long long>(engine_stats.verdicts_emitted),
              verdicts_live, verdicts_stalled);
  for (std::size_t i = 0; i < engine_stats.shards.size(); ++i) {
    const auto& s = engine_stats.shards[i];
    std::printf("    shard %zu: %llu records, %llu sessions, %llu windows, "
                "%llu verdicts, %.1f us/record in monitor, queue peak %zu\n",
                i, static_cast<unsigned long long>(s.records_out),
                static_cast<unsigned long long>(s.sessions_reported),
                static_cast<unsigned long long>(s.windows_emitted),
                static_cast<unsigned long long>(s.verdicts_emitted),
                s.records_out ? 1e-3 * static_cast<double>(s.ingest_ns) /
                                    static_cast<double>(s.records_out)
                              : 0.0,
                s.queue_peak);
  }
  std::printf("\n");

  std::printf("%-10s %-9s %-9s %-9s %-6s %-10s %s\n", "subscriber", "sessions",
              "stalled", "severe", "LD", "switching", "flag");
  std::size_t total = 0, total_stalled = 0;
  for (const auto& [subscriber, stats] : per_subscriber) {
    total += stats.sessions;
    total_stalled += stats.stalled;
    const bool flag =
        stats.sessions >= 3 && stats.stalled * 2 >= stats.sessions;
    std::printf("%-10s %-9zu %-9zu %-9zu %-6zu %-10zu %s\n", subscriber.c_str(),
                stats.sessions, stats.stalled, stats.severe, stats.low_def,
                stats.switching, flag ? "<< degraded QoE" : "");
  }
  std::printf("\nnetwork-wide: %zu sessions, %.1f%% with stalling detected\n",
              total,
              total ? 100.0 * static_cast<double>(total_stalled) /
                          static_cast<double>(total)
                    : 0.0);
  return 0;
}

// ABR policy comparison: using the simulator and the QoE labelling rules to
// quantify how adaptation strategy trades the three impairments off against
// each other — the kind of what-if study the paper motivates for operators
// ("optimize radio resource allocation across users", Section 1).
//
// Three players watch the same videos over the same channels:
//   * conservative: low safety factor, long dwell, low start rung
//   * balanced:     the defaults
//   * aggressive:   high safety factor, short dwell, probes hard
//
// Build & run:  ./build/examples/abr_comparison
#include <cstdio>

#include "vqoe/core/labels.h"
#include "vqoe/net/channel.h"
#include "vqoe/sim/player.h"
#include "vqoe/sim/video.h"

namespace {

using namespace vqoe;

struct PolicyOutcome {
  std::string name;
  double stall_sessions_pct = 0;
  double mean_rr = 0;
  double mean_height = 0;
  double mean_switches = 0;
  double mean_startup_s = 0;
};

PolicyOutcome evaluate_policy(const std::string& name,
                              const sim::PlayerConfig& config,
                              std::size_t runs) {
  sim::Catalog catalog{64, 5};
  const sim::HasPlayer player{config};

  PolicyOutcome outcome;
  outcome.name = name;
  std::mt19937_64 rng{99};
  std::size_t stalled = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    const auto& video = catalog.sample(rng);
    // Fluctuating mid-grade cellular: the regime where policy matters.
    auto channel = i % 3 == 0 ? net::make_commute_channel(1000 + i)
                              : net::make_channel(net::profile_cell_fair(),
                                                  1000 + i);
    const auto session = player.play(video, *channel, 5000 + i);
    if (!session.stalls.empty()) ++stalled;
    outcome.mean_rr += session.rebuffering_ratio();
    outcome.mean_height += session.average_height();
    outcome.mean_switches += static_cast<double>(session.switch_count());
    outcome.mean_startup_s += session.startup_delay_s;
  }
  const double n = static_cast<double>(runs);
  outcome.stall_sessions_pct = 100.0 * static_cast<double>(stalled) / n;
  outcome.mean_rr /= n;
  outcome.mean_height /= n;
  outcome.mean_switches /= n;
  outcome.mean_startup_s /= n;
  return outcome;
}

}  // namespace

int main() {
  constexpr std::size_t kRuns = 300;

  sim::PlayerConfig conservative;
  conservative.abr.safety_factor = 0.6;
  conservative.abr.min_dwell_segments = 12;
  conservative.abr.up_margin = 1.5;
  conservative.abr.initial = sim::Resolution::p144;

  sim::PlayerConfig balanced;  // library defaults

  sim::PlayerConfig aggressive;
  aggressive.abr.safety_factor = 0.95;
  aggressive.abr.min_dwell_segments = 2;
  aggressive.abr.up_margin = 1.0;
  aggressive.abr.initial = sim::Resolution::p480;

  std::printf("comparing ABR policies over %zu sessions each "
              "(fair cellular + commute mix)\n\n",
              kRuns);
  std::printf("%-14s %-10s %-8s %-12s %-10s %-10s\n", "policy", "stalled%",
              "meanRR", "mean_height", "switches", "startup_s");
  for (const auto& outcome :
       {evaluate_policy("conservative", conservative, kRuns),
        evaluate_policy("balanced", balanced, kRuns),
        evaluate_policy("aggressive", aggressive, kRuns)}) {
    std::printf("%-14s %-10.1f %-8.4f %-12.0f %-10.2f %-10.2f\n",
                outcome.name.c_str(), outcome.stall_sessions_pct,
                outcome.mean_rr, outcome.mean_height, outcome.mean_switches,
                outcome.mean_startup_s);
  }

  std::printf(
      "\nreading: conservative policies avoid stalls but sacrifice "
      "resolution;\naggressive ones buy pixels with rebuffering and "
      "switching — the QoE trade-off\nthe paper's three detectors are built "
      "to observe from outside.\n");
  return 0;
}
